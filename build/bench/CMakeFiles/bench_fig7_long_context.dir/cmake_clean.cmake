file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_long_context.dir/bench_fig7_long_context.cpp.o"
  "CMakeFiles/bench_fig7_long_context.dir/bench_fig7_long_context.cpp.o.d"
  "bench_fig7_long_context"
  "bench_fig7_long_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_long_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
