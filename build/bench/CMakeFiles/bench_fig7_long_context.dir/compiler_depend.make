# Empty compiler generated dependencies file for bench_fig7_long_context.
# This may be replaced when dependencies are built.
