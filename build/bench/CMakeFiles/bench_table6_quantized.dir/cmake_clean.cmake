file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_quantized.dir/bench_table6_quantized.cpp.o"
  "CMakeFiles/bench_table6_quantized.dir/bench_table6_quantized.cpp.o.d"
  "bench_table6_quantized"
  "bench_table6_quantized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_quantized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
