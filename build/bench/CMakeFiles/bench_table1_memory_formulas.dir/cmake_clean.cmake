file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_memory_formulas.dir/bench_table1_memory_formulas.cpp.o"
  "CMakeFiles/bench_table1_memory_formulas.dir/bench_table1_memory_formulas.cpp.o.d"
  "bench_table1_memory_formulas"
  "bench_table1_memory_formulas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_memory_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
