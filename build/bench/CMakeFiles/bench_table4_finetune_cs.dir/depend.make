# Empty dependencies file for bench_table4_finetune_cs.
# This may be replaced when dependencies are built.
