file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_finetune_cs.dir/bench_table4_finetune_cs.cpp.o"
  "CMakeFiles/bench_table4_finetune_cs.dir/bench_table4_finetune_cs.cpp.o.d"
  "bench_table4_finetune_cs"
  "bench_table4_finetune_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_finetune_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
