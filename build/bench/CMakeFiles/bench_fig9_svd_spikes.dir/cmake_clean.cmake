file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_svd_spikes.dir/bench_fig9_svd_spikes.cpp.o"
  "CMakeFiles/bench_fig9_svd_spikes.dir/bench_fig9_svd_spikes.cpp.o.d"
  "bench_fig9_svd_spikes"
  "bench_fig9_svd_spikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_svd_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
