# Empty compiler generated dependencies file for bench_fig9_svd_spikes.
# This may be replaced when dependencies are built.
