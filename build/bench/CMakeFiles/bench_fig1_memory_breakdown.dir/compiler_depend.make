# Empty compiler generated dependencies file for bench_fig1_memory_breakdown.
# This may be replaced when dependencies are built.
