file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pretrain.dir/bench_table2_pretrain.cpp.o"
  "CMakeFiles/bench_table2_pretrain.dir/bench_table2_pretrain.cpp.o.d"
  "bench_table2_pretrain"
  "bench_table2_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
