# Empty dependencies file for bench_table2_pretrain.
# This may be replaced when dependencies are built.
