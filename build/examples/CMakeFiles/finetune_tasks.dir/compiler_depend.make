# Empty compiler generated dependencies file for finetune_tasks.
# This may be replaced when dependencies are built.
