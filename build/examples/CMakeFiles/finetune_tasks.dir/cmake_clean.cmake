file(REMOVE_RECURSE
  "CMakeFiles/finetune_tasks.dir/finetune_tasks.cpp.o"
  "CMakeFiles/finetune_tasks.dir/finetune_tasks.cpp.o.d"
  "finetune_tasks"
  "finetune_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
