file(REMOVE_RECURSE
  "CMakeFiles/pretrain_comparison.dir/pretrain_comparison.cpp.o"
  "CMakeFiles/pretrain_comparison.dir/pretrain_comparison.cpp.o.d"
  "pretrain_comparison"
  "pretrain_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
