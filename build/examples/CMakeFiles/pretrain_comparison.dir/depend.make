# Empty dependencies file for pretrain_comparison.
# This may be replaced when dependencies are built.
