file(REMOVE_RECURSE
  "CMakeFiles/memory_planner.dir/memory_planner.cpp.o"
  "CMakeFiles/memory_planner.dir/memory_planner.cpp.o.d"
  "memory_planner"
  "memory_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
