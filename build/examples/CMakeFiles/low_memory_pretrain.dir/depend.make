# Empty dependencies file for low_memory_pretrain.
# This may be replaced when dependencies are built.
