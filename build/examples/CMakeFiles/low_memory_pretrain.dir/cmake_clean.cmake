file(REMOVE_RECURSE
  "CMakeFiles/low_memory_pretrain.dir/low_memory_pretrain.cpp.o"
  "CMakeFiles/low_memory_pretrain.dir/low_memory_pretrain.cpp.o.d"
  "low_memory_pretrain"
  "low_memory_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_memory_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
